// Command progxe-loadgen load-tests the progressive query service: it
// drives mixed query traffic (a hot query plus a pool of cold variants)
// against a running server — or a self-hosted one — and reports the serving
// metrics the plan cache and run coalescing exist to move: client-observed
// time-to-first-result quantiles, sustained throughput, plan-cache hit
// rate, and coalescing fan-out.
//
// Two modes:
//
//   - Open-loop mix (default): requests arrive at -rate for -duration,
//     drawn from -queries variants with probability -hot of picking the hot
//     one. Arrivals do not wait for completions (open loop), so server
//     slowdowns surface as latency, not as a politely reduced request rate.
//
//   - Burst (-burst N): N concurrent identical requests released at one
//     barrier against a warm cache — the coalescing worst case. With
//     -check-identical the harness verifies every subscriber read a
//     byte-identical stream; -gate-runs asserts how many engine runs the
//     burst was allowed to cost.
//
// Threshold flags (-gate-*) turn measurements into exit codes for CI.
//
// Examples:
//
//	progxe-loadgen -rows 2000 -rate 200 -duration 5s
//	progxe-loadgen -burst 128 -check-identical -gate-runs 1 -gate-hit-rate 0.95 -gate-p99 500ms
//	progxe-loadgen -addr localhost:8080 -rate 50 -duration 10s -json load.json
package main

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"progxe/internal/bench"
	"progxe/internal/datagen"
	"progxe/internal/obs"
	"progxe/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "progxe-loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	addr     string
	rows     int
	dims     int
	seed     int64
	queries  int
	hot      float64
	rate     float64
	duration time.Duration
	burst    int
	warmup   bool
	timeout  time.Duration

	gateHitRate    float64
	gateP99        time.Duration
	gateRuns       int
	gateFanout     float64
	checkIdentical bool
	checkPhases    bool

	jsonPath    string
	summaryPath string
}

func run(args []string) error {
	fs := flag.NewFlagSet("progxe-loadgen", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "", "target an existing server (host:port); empty self-hosts one in-process")
	fs.IntVar(&cfg.rows, "rows", 2000, "rows per relation when self-hosting")
	fs.IntVar(&cfg.dims, "dims", 3, "dimensions per relation when self-hosting (≥ 2; feeds the query-variant pool)")
	fs.Int64Var(&cfg.seed, "seed", 42, "workload seed when self-hosting")
	fs.IntVar(&cfg.queries, "queries", 8, "distinct query variants in the mix (1 hot + N-1 cold)")
	fs.Float64Var(&cfg.hot, "hot", 0.9, "probability a request draws the hot query")
	fs.Float64Var(&cfg.rate, "rate", 200, "open-loop arrival rate, requests/second")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured window of the open-loop mix")
	fs.IntVar(&cfg.burst, "burst", 0, "burst mode: this many concurrent identical requests at one barrier (0 = open-loop mix)")
	fs.BoolVar(&cfg.warmup, "warmup", true, "run each variant once before measuring (warm plan cache)")
	fs.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "per-request client timeout")
	fs.Float64Var(&cfg.gateHitRate, "gate-hit-rate", 0, "fail unless plan-cache hit rate over the window ≥ this (0 = off)")
	fs.DurationVar(&cfg.gateP99, "gate-p99", 0, "fail unless p99 TTFR ≤ this (0 = off)")
	fs.IntVar(&cfg.gateRuns, "gate-runs", -1, "fail unless the window cost exactly this many engine runs (-1 = off)")
	fs.Float64Var(&cfg.gateFanout, "gate-fanout", 0, "fail unless mean subscribers per coalesced run ≥ this (0 = off)")
	fs.BoolVar(&cfg.checkIdentical, "check-identical", false, "burst mode: fail unless all successful streams are byte-identical")
	fs.BoolVar(&cfg.checkPhases, "check-phases", false, "fail unless cache-hit runs report ≈0 ms in partition/region-build/prune")
	fs.StringVar(&cfg.jsonPath, "json", "", "write a bench JSON report with the serve-path metrics to this file")
	fs.StringVar(&cfg.summaryPath, "summary", "", "append a markdown summary table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.dims < 2 {
		return fmt.Errorf("-dims must be ≥ 2, got %d", cfg.dims)
	}
	if cfg.queries < 1 {
		return fmt.Errorf("-queries must be ≥ 1, got %d", cfg.queries)
	}

	base := cfg.addr
	if base == "" {
		srv, ln, err := selfHost(cfg)
		if err != nil {
			return err
		}
		defer srv.CancelRuns()
		defer ln.Close()
		base = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "progxe-loadgen: self-hosting on %s (%d rows × %d dims, seed %d)\n",
			base, cfg.rows, cfg.dims, cfg.seed)
	}
	baseURL := "http://" + base

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}

	variants, err := queryVariants(client, baseURL, cfg.queries)
	if err != nil {
		return err
	}
	if cfg.warmup {
		for i, q := range variants {
			if res := fire(client, baseURL, q); res.err != nil {
				return fmt.Errorf("warmup query %d: %w", i, res.err)
			}
		}
	}

	before, err := fetchStats(client, baseURL)
	if err != nil {
		return err
	}
	var results []reqResult
	var window time.Duration
	if cfg.burst > 0 {
		results, window = burstMode(client, baseURL, variants[0], cfg.burst)
	} else {
		results, window = openLoop(client, baseURL, variants, cfg)
	}
	after, err := fetchStats(client, baseURL)
	if err != nil {
		return err
	}

	return report(cfg, results, window, before, after)
}

// selfHost starts an in-process service with a generated workload and
// coalescing on — the configuration the serve binary defaults to.
func selfHost(cfg config) (*server.Server, net.Listener, error) {
	srv := server.New(server.Config{CoalesceReplay: server.DefaultCoalesceReplay})
	r, t, err := datagen.GeneratePair(datagen.Spec{
		N: cfg.rows, Dims: cfg.dims, Distribution: datagen.AntiCorrelated,
		Selectivity: 0.01, Seed: uint64(cfg.seed),
	})
	if err != nil {
		return nil, nil, err
	}
	if err := srv.Catalog().Register(r); err != nil {
		return nil, nil, err
	}
	if err := srv.Catalog().Register(t); err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go func() { _ = http.Serve(ln, srv) }()
	return srv, ln, nil
}

// queryVariants builds n distinct PREFERRING queries over the first two
// catalog relations by rotating which attribute pair each output dimension
// sums — every variant compiles to a genuinely different plan. Variant 0 is
// the hot query.
func queryVariants(client *http.Client, baseURL string, n int) ([]string, error) {
	resp, err := client.Get(baseURL + "/v1/relations")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var listing struct {
		Relations []struct {
			Name  string   `json:"name"`
			Attrs []string `json:"attrs"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("listing relations: %w", err)
	}
	if len(listing.Relations) < 2 {
		return nil, fmt.Errorf("need ≥ 2 catalog relations, got %d (self-host or preload the target)", len(listing.Relations))
	}
	l, r := listing.Relations[0], listing.Relations[1]
	if len(l.Attrs) < 2 || len(r.Attrs) < 2 {
		return nil, fmt.Errorf("relations %s/%s need ≥ 2 attributes for the variant pool", l.Name, r.Name)
	}
	variants := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ax := l.Attrs[i%len(l.Attrs)]
		bx := r.Attrs[(i/len(l.Attrs))%len(r.Attrs)]
		ay := l.Attrs[(i+1)%len(l.Attrs)]
		by := r.Attrs[(i/len(l.Attrs)+1)%len(r.Attrs)]
		variants = append(variants, fmt.Sprintf(
			"SELECT (%[1]s.%[3]s + %[2]s.%[4]s) AS x, (%[1]s.%[5]s + %[2]s.%[6]s) AS y FROM %[1]s %[1]s, %[2]s %[2]s WHERE %[1]s.jkey = %[2]s.jkey PREFERRING LOWEST(x) AND LOWEST(y)",
			l.Name, r.Name, ax, bx, ay, by))
	}
	return variants, nil
}

// reqResult is one measured request.
type reqResult struct {
	status      int
	ttfr        time.Duration // -1 when no result arrived
	total       time.Duration
	results     int
	cached      bool
	subscribers int
	setupMS     float64
	hash        [sha256.Size]byte
	err         error
}

// fire posts one query and consumes its stream, timing the first result
// record as it crosses the client boundary.
func fire(client *http.Client, baseURL, query string) reqResult {
	res := reqResult{ttfr: -1}
	body, _ := json.Marshal(map[string]string{"query": query})
	start := time.Now()
	resp, err := client.Post(baseURL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		res.err = fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
		return res
	}
	h := sha256.New()
	sc := bufio.NewScanner(io.TeeReader(resp.Body, h))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Type        string     `json:"type"`
			Cached      bool       `json:"cached"`
			Subscribers int        `json:"subscribers"`
			Results     int        `json:"results"`
			Error       string     `json:"error"`   // stats-record run error
			Message     string     `json:"message"` // structured in-stream error records
			Phases      obs.Report `json:"phases"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			res.err = fmt.Errorf("bad stream line: %w", err)
			return res
		}
		switch rec.Type {
		case "result":
			if res.ttfr < 0 {
				res.ttfr = time.Since(start)
			}
			res.results++
		case "error":
			res.err = fmt.Errorf("stream error: %s", rec.Message)
			return res
		case "stats":
			res.cached = rec.Cached
			res.subscribers = rec.Subscribers
			for _, ph := range rec.Phases.Phases {
				switch ph.Phase {
				case "partition", "region-build", "prune":
					res.setupMS += ph.SequencerMillis + ph.WorkerMillis
				}
			}
			if rec.Error != "" {
				res.err = fmt.Errorf("run error: %s", rec.Error)
			}
		}
	}
	if err := sc.Err(); err != nil && res.err == nil {
		res.err = err
	}
	res.total = time.Since(start)
	h.Sum(res.hash[:0])
	return res
}

// burstMode releases n identical requests at one barrier. Every worker
// pre-establishes a keep-alive connection (a /healthz round-trip held open
// until all workers are connected) before the barrier drops, so the burst
// measures coalescing under genuinely simultaneous arrivals rather than the
// TCP dial ramp.
func burstMode(client *http.Client, baseURL, query string, n int) ([]reqResult, time.Duration) {
	results := make([]reqResult, n)
	barrier := make(chan struct{})
	var connected sync.WaitGroup
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		connected.Add(1)
		go func(i int) {
			defer wg.Done()
			// Open (and keep pooled) a dedicated connection: the response
			// body is not drained until every worker has connected, which
			// pins one live conn per worker instead of letting early
			// workers share a handful of pooled ones.
			resp, err := client.Get(baseURL + "/healthz")
			if err == nil {
				connected.Done()
				connected.Wait()
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			} else {
				connected.Done()
			}
			<-barrier
			results[i] = fire(client, baseURL, query)
		}(i)
	}
	connected.Wait()
	start := time.Now()
	close(barrier)
	wg.Wait()
	return results, time.Since(start)
}

// openLoop fires the mixed query traffic at the configured arrival rate,
// not waiting for completions.
func openLoop(client *http.Client, baseURL string, variants []string, cfg config) ([]reqResult, time.Duration) {
	rng := rand.New(rand.NewSource(cfg.seed))
	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var (
		mu      sync.Mutex
		results []reqResult
		wg      sync.WaitGroup
	)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	start := time.Now()
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-tick.C:
			q := variants[0]
			if rng.Float64() >= cfg.hot && len(variants) > 1 {
				q = variants[1+rng.Intn(len(variants)-1)]
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := fire(client, baseURL, q)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return results, time.Since(start)
}

func fetchStats(client *http.Client, baseURL string) (server.Snapshot, error) {
	var s server.Snapshot
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("parsing /v1/stats: %w", err)
	}
	return s, nil
}

// quantile returns the q-quantile of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func report(cfg config, results []reqResult, window time.Duration, before, after server.Snapshot) error {
	var (
		ok, failed int
		ttfrs      []time.Duration
		cachedRuns int
		maxSetupMS float64
		firstErr   error
	)
	hashes := map[[sha256.Size]byte]int{}
	for _, r := range results {
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		ok++
		if r.ttfr >= 0 {
			ttfrs = append(ttfrs, r.ttfr)
		}
		if r.cached {
			cachedRuns++
			if r.setupMS > maxSetupMS {
				maxSetupMS = r.setupMS
			}
		}
		hashes[r.hash]++
	}
	sort.Slice(ttfrs, func(i, j int) bool { return ttfrs[i] < ttfrs[j] })
	p50, p99 := quantile(ttfrs, 0.50), quantile(ttfrs, 0.99)

	hits := after.PlanCacheHits - before.PlanCacheHits
	misses := after.PlanCacheMisses - before.PlanCacheMisses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	runs := after.RunsStarted - before.RunsStarted
	coalRuns := after.CoalescedRuns - before.CoalescedRuns
	coalSubs := after.CoalescedSubscribers - before.CoalescedSubscribers
	fanout := 0.0
	if coalRuns > 0 {
		fanout = float64(coalSubs) / float64(coalRuns)
	}
	throughput := 0.0
	if window > 0 {
		throughput = float64(ok) / window.Seconds()
	}

	mode := fmt.Sprintf("open-loop %.0f req/s × %s (%d variants, %.0f%% hot)", cfg.rate, cfg.duration, cfg.queries, cfg.hot*100)
	if cfg.burst > 0 {
		mode = fmt.Sprintf("burst of %d identical requests", cfg.burst)
	}
	fmt.Printf("mode:          %s\n", mode)
	fmt.Printf("requests:      %d ok, %d failed (window %.2fs)\n", ok, failed, window.Seconds())
	fmt.Printf("throughput:    %.1f completed/s\n", throughput)
	fmt.Printf("ttfr:          p50 %.2fms  p99 %.2fms  (%d measured)\n",
		ms(p50), ms(p99), len(ttfrs))
	fmt.Printf("plan cache:    %d hits / %d misses (hit rate %.1f%%), %d cached streams\n", hits, misses, hitRate*100, cachedRuns)
	fmt.Printf("engine runs:   %d started, %d coalesced, fan-out %.1f subscribers/run\n", runs, coalRuns, fanout)
	fmt.Printf("truncations:   %d\n", after.ReplayTruncated-before.ReplayTruncated)

	if cfg.jsonPath != "" {
		if err := writeJSON(cfg, p50, p99, throughput, hitRate, fanout); err != nil {
			return err
		}
	}
	if cfg.summaryPath != "" {
		if err := writeSummary(cfg, mode, ok, failed, p50, p99, throughput, hitRate, runs, fanout); err != nil {
			return err
		}
	}

	// Gates: measurements become exit codes.
	var violations []string
	if failed > 0 {
		violations = append(violations, fmt.Sprintf("%d requests failed (first: %v)", failed, firstErr))
	}
	if cfg.gateHitRate > 0 && hitRate < cfg.gateHitRate {
		violations = append(violations, fmt.Sprintf("hit rate %.3f < gate %.3f", hitRate, cfg.gateHitRate))
	}
	if cfg.gateP99 > 0 && p99 > cfg.gateP99 {
		violations = append(violations, fmt.Sprintf("p99 TTFR %s > gate %s", p99, cfg.gateP99))
	}
	if cfg.gateRuns >= 0 && runs != int64(cfg.gateRuns) {
		violations = append(violations, fmt.Sprintf("%d engine runs, gate wants exactly %d", runs, cfg.gateRuns))
	}
	if cfg.gateFanout > 0 && fanout < cfg.gateFanout {
		violations = append(violations, fmt.Sprintf("fan-out %.1f < gate %.1f", fanout, cfg.gateFanout))
	}
	if cfg.checkIdentical && cfg.burst > 0 && ok > 0 && len(hashes) != 1 {
		violations = append(violations, fmt.Sprintf("%d distinct stream bodies across %d successful subscribers, want 1", len(hashes), ok))
	}
	if cfg.checkPhases {
		if cachedRuns == 0 {
			violations = append(violations, "no cached runs observed, cannot check setup phases")
		} else if maxSetupMS > 0.05 {
			violations = append(violations, fmt.Sprintf("cache-hit run spent %.3f ms in partition/region-build/prune, want ≈0", maxSetupMS))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("gate violations:\n  - %s", strings.Join(violations, "\n  - "))
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func writeJSON(cfg config, p50, p99 time.Duration, throughput, hitRate, fanout float64) error {
	rep := &bench.JSONReport{}
	kind := "serve-mix"
	if cfg.burst > 0 {
		kind = "serve-burst"
	}
	rep.Figures = append(rep.Figures, bench.JSONFigure{
		Figure:  "serve-load",
		Caption: "Serve-path load test (plan cache + run coalescing)",
		Kind:    kind,
		Runs: []bench.JSONRun{{
			Engine: "progxe", N: cfg.rows, Dims: cfg.dims, Dist: "anti-correlated",
			ServeTTFRP50MS: ms(p50), ServeTTFRP99MS: ms(p99),
			ThroughputRPS: throughput, CacheHitRate: hitRate, CoalesceFanout: fanout,
		}},
	})
	f, err := os.Create(cfg.jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.WriteJSON(f)
}

func writeSummary(cfg config, mode string, ok, failed int, p50, p99 time.Duration, throughput, hitRate float64, runs int64, fanout float64) error {
	f, err := os.OpenFile(cfg.summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### Serve-path load test\n\n%s\n\n", mode)
	fmt.Fprintf(f, "| ok | failed | p50 TTFR | p99 TTFR | throughput | hit rate | engine runs | fan-out |\n")
	fmt.Fprintf(f, "|---|---|---|---|---|---|---|---|\n")
	fmt.Fprintf(f, "| %d | %d | %.2f ms | %.2f ms | %.1f/s | %.1f%% | %d | %.1f |\n\n",
		ok, failed, ms(p50), ms(p99), throughput, hitRate*100, runs, fanout)
	return nil
}
