package main

import (
	"crypto/sha256"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"progxe/internal/bench"
	"progxe/internal/server"
)

// TestRunFlagValidation pins the harness's argument contract: malformed
// invocations fail before any server is started or traffic fired.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"dims too small", []string{"-dims", "1"}, "-dims must be ≥ 2"},
		{"zero queries", []string{"-queries", "0"}, "-queries must be ≥ 1"},
		{"bad duration", []string{"-duration", "soon"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestQuantile pins the index math on the sorted-durations helper.
func TestQuantile(t *testing.T) {
	if got := quantile(nil, 0.99); got != 0 {
		t.Fatalf("quantile(nil) = %v, want 0", got)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1},
		{0.50, 5},
		{0.99, 9},
		{1.0, 10},
	}
	for _, tc := range cases {
		if got := quantile(sorted, tc.q); got != tc.want {
			t.Fatalf("quantile(.., %v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// gateFixture builds a healthy measured window: n identical successful
// streams, every request served from one coalesced engine run with a warm
// plan cache.
func gateFixture(n int) ([]reqResult, server.Snapshot, server.Snapshot) {
	var hash [sha256.Size]byte
	hash[0] = 0xab
	results := make([]reqResult, n)
	for i := range results {
		results[i] = reqResult{
			status:  200,
			ttfr:    time.Duration(i+1) * time.Millisecond,
			total:   time.Duration(i+2) * time.Millisecond,
			results: 7,
			cached:  true,
			hash:    hash,
		}
	}
	before := server.Snapshot{PlanCacheHits: 10, PlanCacheMisses: 5, RunsStarted: 3}
	after := before
	after.PlanCacheHits += int64(n)
	after.RunsStarted++
	after.CoalescedRuns++
	after.CoalescedSubscribers += int64(n)
	return results, before, after
}

// TestReportGatesPass drives every gate at once through a window that
// satisfies all of them.
func TestReportGatesPass(t *testing.T) {
	results, before, after := gateFixture(8)
	cfg := config{
		burst:          8,
		gateHitRate:    0.99,
		gateP99:        time.Second,
		gateRuns:       1,
		gateFanout:     4,
		checkIdentical: true,
		checkPhases:    true,
	}
	if err := report(cfg, results, time.Second, before, after); err != nil {
		t.Fatalf("report on a healthy window = %v, want nil", err)
	}
}

// TestReportGatesFail flips each gate individually and checks the violation
// is reported (and names the offending measurement).
func TestReportGatesFail(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config, *[]reqResult, *server.Snapshot)
		want   string
	}{
		{
			"failed request",
			func(_ *config, rs *[]reqResult, _ *server.Snapshot) {
				(*rs)[0].err = os.ErrDeadlineExceeded
			},
			"requests failed",
		},
		{
			"hit rate",
			func(_ *config, _ *[]reqResult, after *server.Snapshot) {
				after.PlanCacheMisses += 100
			},
			"hit rate",
		},
		{
			"p99 latency",
			func(cfg *config, _ *[]reqResult, _ *server.Snapshot) {
				cfg.gateP99 = time.Microsecond
			},
			"p99 TTFR",
		},
		{
			"engine runs",
			func(_ *config, _ *[]reqResult, after *server.Snapshot) {
				after.RunsStarted += 3
			},
			"engine runs, gate wants exactly",
		},
		{
			"fan-out",
			func(cfg *config, _ *[]reqResult, _ *server.Snapshot) {
				cfg.gateFanout = 100
			},
			"fan-out",
		},
		{
			"divergent streams",
			func(_ *config, rs *[]reqResult, _ *server.Snapshot) {
				(*rs)[1].hash[0] ^= 0xff
			},
			"distinct stream bodies",
		},
		{
			"cache-hit setup work",
			func(_ *config, rs *[]reqResult, _ *server.Snapshot) {
				(*rs)[2].setupMS = 1.5
			},
			"partition/region-build/prune",
		},
		{
			"no cached runs",
			func(_ *config, rs *[]reqResult, _ *server.Snapshot) {
				for i := range *rs {
					(*rs)[i].cached = false
				}
			},
			"no cached runs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results, before, after := gateFixture(8)
			cfg := config{
				burst:          8,
				gateHitRate:    0.99,
				gateP99:        time.Second,
				gateRuns:       1,
				gateFanout:     4,
				checkIdentical: true,
				checkPhases:    true,
			}
			tc.mutate(&cfg, &results, &after)
			err := report(cfg, results, time.Second, before, after)
			if err == nil {
				t.Fatal("report passed, want a gate violation")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestWriteJSONSchema pins the -json report shape: downstream trajectory
// tooling parses these files, so key names and figure identity must stay
// stable.
func TestWriteJSONSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	cfg := config{rows: 1234, dims: 3, burst: 64, jsonPath: path}
	if err := writeJSON(cfg, 2*time.Millisecond, 9*time.Millisecond, 150.5, 0.95, 32); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := bench.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 || len(rep.Figures[0].Runs) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	fig := rep.Figures[0]
	if fig.Figure != "serve-load" || fig.Kind != "serve-burst" {
		t.Fatalf("figure identity = %q/%q, want serve-load/serve-burst", fig.Figure, fig.Kind)
	}
	r := fig.Runs[0]
	if r.N != 1234 || r.Dims != 3 || r.Engine != "progxe" {
		t.Fatalf("run workload = %+v", r)
	}
	if r.ServeTTFRP50MS != 2 || r.ServeTTFRP99MS != 9 ||
		r.ThroughputRPS != 150.5 || r.CacheHitRate != 0.95 || r.CoalesceFanout != 32 {
		t.Fatalf("serve metrics = %+v", r)
	}

	// Open-loop runs report kind serve-mix.
	cfg.burst = 0
	if err := writeJSON(cfg, 0, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	rep2, err := bench.ReadJSON(f2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Figures[0].Kind != "serve-mix" {
		t.Fatalf("open-loop kind = %q, want serve-mix", rep2.Figures[0].Kind)
	}

	// Raw key-name check: the serve metrics must serialize under the exact
	// names the CI summaries and comparisons grep for.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Figures []struct {
			Runs []map[string]any `json:"runs"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	// Zero-valued metrics are omitempty; re-write with non-zero values to
	// observe every key.
	cfg.burst = 1
	if err := writeJSON(cfg, time.Millisecond, time.Millisecond, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	got := doc.Figures[0].Runs[0]
	for _, key := range []string{
		"engine", "n", "dims", "dist",
		"serve_ttfr_p50_ms", "serve_ttfr_p99_ms",
		"throughput_rps", "cache_hit_rate", "coalesce_fanout",
	} {
		if _, ok := got[key]; !ok {
			t.Fatalf("-json run record lacks key %q: %v", key, got)
		}
	}
}

// TestLoadgenBurstEndToEnd exercises the full harness against a self-hosted
// server: a small warm-cache burst must complete without violations and
// produce parseable -json and -summary artifacts.
func TestLoadgenBurstEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end load test")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "load.json")
	summaryPath := filepath.Join(dir, "summary.md")
	err := run([]string{
		"-rows", "150", "-dims", "2", "-queries", "2",
		"-burst", "2",
		"-json", jsonPath, "-summary", summaryPath,
	})
	if err != nil {
		t.Fatalf("burst run failed: %v", err)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := bench.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 || rep.Figures[0].Kind != "serve-burst" {
		t.Fatalf("-json report shape: %+v", rep)
	}
	md, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### Serve-path load test") {
		t.Fatalf("-summary output lacks the table header:\n%s", md)
	}
}
