package progxe

// Stream runs the engine in a separate goroutine and returns a channel of
// progressively emitted results. The channel is closed when evaluation
// completes; the returned wait function blocks until then and reports the
// run's statistics and error.
//
//	results, wait := progxe.Stream(engine, problem)
//	for r := range results {
//	    render(r) // arrives as soon as it is provably final
//	}
//	stats, err := wait()
func Stream(e Engine, p *Problem) (<-chan Result, func() (Stats, error)) {
	out := make(chan Result, 64)
	done := make(chan struct{})
	var (
		stats Stats
		err   error
	)
	go func() {
		defer close(done)
		defer close(out)
		stats, err = e.Run(p, SinkFunc(func(r Result) { out <- r }))
	}()
	return out, func() (Stats, error) {
		<-done
		return stats, err
	}
}
