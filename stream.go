package progxe

import (
	"context"

	"progxe/internal/smj"
)

// Stream runs the engine in a separate goroutine and returns a channel of
// progressively emitted results. The channel is closed when evaluation
// completes; the returned wait function blocks until then and reports the
// run's statistics and error.
//
//	results, wait := progxe.Stream(engine, problem)
//	for r := range results {
//	    render(r) // arrives as soon as it is provably final
//	}
//	stats, err := wait()
//
// Stream is StreamContext with a background context: the consumer must drain
// the channel (or cancel via StreamContext) or the producing goroutine stays
// blocked on the next send.
func Stream(e Engine, p *Problem) (<-chan Result, func() (Stats, error)) {
	return StreamContext(context.Background(), e, p)
}

// StreamContext is Stream with cancellation: when ctx is canceled or times
// out, the engine aborts cooperatively (see RunContext), the results channel
// is closed, and wait returns the partial statistics together with ctx's
// error. A consumer that stops reading mid-stream simply cancels ctx — the
// producing goroutine is guaranteed to exit instead of blocking forever on a
// channel nobody drains.
func StreamContext(ctx context.Context, e Engine, p *Problem) (<-chan Result, func() (Stats, error)) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Result, 64)
	done := make(chan struct{})
	var (
		stats Stats
		err   error
	)
	go func() {
		defer close(done)
		defer close(out)
		stats, err = smj.RunContext(ctx, e, p, SinkFunc(func(r Result) {
			select {
			case out <- r:
			case <-ctx.Done():
				// Consumer gone: drop the result and let the engine observe
				// the cancellation at its next poll instead of blocking here.
			}
		}))
	}()
	return out, func() (Stats, error) {
		<-done
		return stats, err
	}
}
