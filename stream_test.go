package progxe_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"progxe"
)

// cancelProblem builds a workload whose skyline is far larger than the
// Stream channel buffer, so a producer whose consumer stops reading cannot
// run to completion by filling the buffer alone.
func cancelProblem(t *testing.T) *progxe.Problem {
	t.Helper()
	left, right, err := progxe.GeneratePair(progxe.DataSpec{
		N: 2000, Dims: 3, Distribution: progxe.AntiCorrelated,
		Selectivity: 0.01, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := progxe.ParseQuery(`
		SELECT (R.a0 + T.a0) AS x, (R.a1 + T.a1) AS y, (R.a2 + T.a2) AS z
		FROM R R, T T
		WHERE R.jkey = T.jkey
		PREFERRING LOWEST(x) AND LOWEST(y) AND LOWEST(z)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Compile(left, right)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStreamContextCancelReleasesProducer is the regression test for the
// Stream goroutine leak: a consumer that abandons the channel mid-stream
// used to leave the engine goroutine blocked on a send forever. With
// StreamContext, canceling the context aborts the run, closes the channel,
// and wait() returns the context error.
func TestStreamContextCancelReleasesProducer(t *testing.T) {
	p := cancelProblem(t)
	if full, err := progxe.Oracle(p); err != nil || len(full) < 100 {
		t.Fatalf("workload too small for the regression (skyline %d, err %v)", len(full), err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	results, wait := progxe.StreamContext(ctx, progxe.New(progxe.Options{}), p)

	// Read a single result, then abandon the stream.
	if _, ok := <-results; !ok {
		t.Fatal("stream produced no results")
	}
	cancel()

	waited := make(chan error, 1)
	go func() {
		_, err := wait()
		waited <- err
	}()
	select {
	case err := <-waited:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("wait() = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("producer goroutine did not exit after cancel (leak regression)")
	}

	// The channel must drain and close — ranging over it terminates.
	n := 0
	for range results {
		n++
	}
	if n > 64 {
		t.Fatalf("post-cancel backlog of %d results exceeds the channel buffer", n)
	}
}

// TestStreamContextTimeout verifies deadline-based cancellation through the
// same path.
func TestStreamContextTimeout(t *testing.T) {
	p := cancelProblem(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	results, wait := progxe.StreamContext(ctx, progxe.New(progxe.Options{}), p)
	for range results {
	}
	if _, err := wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait() = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextAllEngines checks the ContextEngine contract across every
// engine constructor: a pre-canceled context aborts with context.Canceled
// and a background context produces the oracle result set.
func TestRunContextAllEngines(t *testing.T) {
	p := cancelProblem(t)
	want, err := progxe.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]progxe.Engine{
		"progxe":  progxe.New(progxe.Options{}),
		"progxe+": progxe.New(progxe.Options{PushThrough: true}),
		"jfsl":    progxe.NewJFSL(false),
		"ssmj":    progxe.NewSSMJ(true),
		"saj":     progxe.NewSAJ(),
	}
	for name, e := range engines {
		t.Run(name, func(t *testing.T) {
			if _, ok := e.(progxe.ContextEngine); !ok {
				t.Fatalf("%s does not implement ContextEngine", name)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			var got []progxe.Result
			_, err := progxe.RunContext(ctx, e, p, progxe.SinkFunc(func(r progxe.Result) {
				got = append(got, r)
			}))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled run: err = %v, want context.Canceled", err)
			}
			if len(got) != 0 {
				t.Fatalf("pre-canceled run emitted %d results", len(got))
			}

			// A nil context is tolerated on the engine method directly, not
			// just through the RunContext facade.
			var c progxe.Collector
			if _, err := e.(progxe.ContextEngine).RunContext(nil, p, &c); err != nil {
				t.Fatal(err)
			}
			if len(c.Results) != len(want) {
				t.Fatalf("background run: %d results, oracle has %d", len(c.Results), len(want))
			}
		})
	}
}
