// Internet aggregator (Example 1 of the paper): a traveller plans a holiday
// visiting both Rome and Paris. Hotel candidates for the two legs are joined
// on the fare class of the connecting train. Because Rome is an ancient city
// with many historic sites, the traveller is willing to walk twice as far in
// Rome as in Paris — so the Rome leg's walking distance is weighted ½ in the
// combined walking criterion. The cumulative goal is the total trip price;
// the combined hotel rating is maximized.
//
// Rather than waiting for thousands of hotel pairings to be enumerated, the
// aggregator renders each Pareto-optimal combination as soon as it is
// provably final.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"progxe"
)

const (
	nRomeHotels  = 4000
	nParisHotels = 4000
	fareClasses  = 25
)

func main() {
	rome, paris := buildHotels()

	// walk = 0.5·Rome.walk + Paris.walk  (Rome metres count half)
	// price = Rome.price + Paris.price   (cumulative goal)
	// rating = MIN(Rome.rating, Paris.rating), maximized: the trip is only
	// as good as its worst hotel.
	q, err := progxe.ParseQuery(`
		SELECT (0.5 * R.walk + P.walk) AS walk,
		       (R.price + P.price) AS price,
		       MIN(R.rating, P.rating) AS rating
		FROM Rome R, Paris P
		WHERE R.fare = P.fare
		PREFERRING LOWEST(walk) AND LOWEST(price) AND HIGHEST(rating)`)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := q.Compile(rome, paris)
	if err != nil {
		log.Fatal(err)
	}

	engine := progxe.New(progxe.Options{})
	start := time.Now()
	results, wait := progxe.Stream(engine, problem)
	count := 0
	for r := range results {
		count++
		if count <= 8 {
			fmt.Printf("[%7.2f ms] trip: Rome hotel %-5d + Paris hotel %-5d → walk %6.1f, €%7.2f, rating %.1f\n",
				float64(time.Since(start).Microseconds())/1000,
				r.LeftID, r.RightID, r.Out[0], r.Out[1], r.Out[2])
		}
	}
	if _, err := wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d Pareto-optimal trips in %v (of %d × %d candidate hotels)\n",
		count, time.Since(start).Round(time.Millisecond), nRomeHotels, nParisHotels)
}

func buildHotels() (*progxe.Relation, *progxe.Relation) {
	rng := rand.New(rand.NewPCG(2024, 6))
	mk := func(name string, n int) *progxe.Relation {
		schema, err := progxe.NewSchema(name, []string{"walk", "price", "rating"}, "fare")
		if err != nil {
			log.Fatal(err)
		}
		rel := progxe.NewRelation(schema)
		for i := 0; i < n; i++ {
			// Central hotels (short walks) cost more: anti-correlated
			// walk/price makes the skyline rich, as in real city data.
			walk := 50 + rng.Float64()*2950 // metres to the sights
			price := 40 + (3000-walk)*0.08 + rng.Float64()*120
			rating := 1 + rng.Float64()*4
			rel.MustAppend(progxe.Tuple{
				ID:      int64(i),
				Vals:    []float64{walk, price, rating},
				JoinKey: int64(rng.IntN(fareClasses)),
			})
		}
		return rel
	}
	return mk("Rome", nRomeHotels), mk("Paris", nParisHotels)
}
