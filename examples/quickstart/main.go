// Quickstart: generate a two-source benchmark workload, run the ProgXe
// progressive engine, and watch skyline results stream out as they are
// proven final — then verify the stream against the blocking oracle.
package main

import (
	"fmt"
	"log"
	"time"

	"progxe"
)

func main() {
	// Two sources, 2000 tuples each, 3 skyline dimensions, anti-correlated
	// attributes (the hardest regime for skylines), join selectivity 1%.
	left, right, err := progxe.GeneratePair(progxe.DataSpec{
		N:            2000,
		Dims:         3,
		Distribution: progxe.AntiCorrelated,
		Selectivity:  0.01,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The SkyMapJoin query: join on the generated key, add attributes
	// pairwise, minimize every output dimension.
	q, err := progxe.ParseQuery(`
		SELECT (R.a0 + T.a0) AS cost,
		       (R.a1 + T.a1) AS delay,
		       (R.a2 + T.a2) AS risk
		FROM R R, T T
		WHERE R.jkey = T.jkey
		PREFERRING LOWEST(cost) AND LOWEST(delay) AND LOWEST(risk)`)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := q.Compile(left, right)
	if err != nil {
		log.Fatal(err)
	}

	engine := progxe.New(progxe.Options{}) // the paper's full ProgXe configuration
	start := time.Now()
	results, wait := progxe.Stream(engine, problem)

	count := 0
	for r := range results {
		count++
		if count <= 5 || count%200 == 0 {
			fmt.Printf("[%8.3f ms] result #%d: pair (%d, %d) cost=%.1f delay=%.1f risk=%.1f\n",
				float64(time.Since(start).Microseconds())/1000, count,
				r.LeftID, r.RightID, r.Out[0], r.Out[1], r.Out[2])
		}
	}
	stats, err := wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d skyline results in %v\n", count, time.Since(start).Round(time.Millisecond))
	fmt.Printf("join results materialized: %d\n", stats.JoinResults)
	fmt.Printf("regions: %d (eliminated before tuple work: %d, dropped mid-run: %d)\n",
		stats.Regions, stats.RegionsPruned, stats.RegionsDropped)

	// Every progressively emitted result is guaranteed final: the stream
	// equals the blocking oracle's answer.
	oracle, err := progxe.Oracle(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle agreement: %d == %d ✓\n", count, len(oracle))
}
