// On-line search refinement (Example 2 of the paper): a user's precise
// query — flights under €200 joined with hotels under €80 in the same
// city — returns nothing, so the system relaxes both constraints and ranks
// relaxed answers by how far they deviate from the original query. Only the
// skyline of relaxations is useful: a candidate that deviates more on every
// criterion than another is noise [Koudas et al., VLDB'06].
//
// Progressive delivery matters here most of all: the user starts seeing the
// closest relaxations immediately and can refine the query long before the
// full evaluation finishes.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"progxe"
)

const (
	nFlights = 6000
	nHotels  = 6000
	nCities  = 30

	maxFlightPrice = 200.0 // the user's original constraints
	maxHotelPrice  = 80.0
)

func main() {
	flights, hotels := buildData()

	// Deviation from the original query per source: how much each
	// candidate exceeds the stated budget (0 when within it). The third
	// criterion keeps total price in the trade-off so cheap combinations
	// surface first.
	q, err := progxe.ParseQuery(`
		SELECT (MAX(F.price - 200, 0) ) AS flightOver,
		       (MAX(H.price - 80, 0)) AS hotelOver,
		       (F.price + H.price) AS total
		FROM Flights F, Hotels H
		WHERE F.city = H.city
		PREFERRING LOWEST(flightOver) AND LOWEST(hotelOver) AND LOWEST(total)`)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := q.Compile(flights, hotels)
	if err != nil {
		log.Fatal(err)
	}

	// The strict query is empty — verify, then relax.
	strict := 0
	for _, f := range flights.Tuples {
		if f.Vals[0] <= maxFlightPrice {
			for _, h := range hotels.Tuples {
				if h.Vals[0] <= maxHotelPrice && f.JoinKey == h.JoinKey {
					strict++
				}
			}
		}
	}
	fmt.Printf("exact matches for the original query: %d — relaxing…\n\n", strict)

	engine := progxe.New(progxe.Options{})
	start := time.Now()
	count := 0
	firstBatch := []progxe.Result{}
	_, err = engine.Run(problem, progxe.SinkFunc(func(r progxe.Result) {
		count++
		if len(firstBatch) < 6 {
			firstBatch = append(firstBatch, r)
			fmt.Printf("[%7.2f ms] flight %-5d + hotel %-5d  over-budget: flight +€%-6.2f hotel +€%-6.2f  total €%7.2f\n",
				float64(time.Since(start).Microseconds())/1000,
				r.LeftID, r.RightID, r.Out[0], r.Out[1], r.Out[2])
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d skyline relaxations in %v — the first ones above arrived early enough to refine interactively\n",
		count, time.Since(start).Round(time.Millisecond))
}

func buildData() (*progxe.Relation, *progxe.Relation) {
	rng := rand.New(rand.NewPCG(99, 3))
	fSchema, err := progxe.NewSchema("Flights", []string{"price"}, "city")
	if err != nil {
		log.Fatal(err)
	}
	flights := progxe.NewRelation(fSchema)
	for i := 0; i < nFlights; i++ {
		flights.MustAppend(progxe.Tuple{
			ID:      int64(i),
			Vals:    []float64{210 + rng.Float64()*400}, // all flights exceed €200
			JoinKey: int64(rng.IntN(nCities)),
		})
	}
	hSchema, err := progxe.NewSchema("Hotels", []string{"price"}, "city")
	if err != nil {
		log.Fatal(err)
	}
	hotels := progxe.NewRelation(hSchema)
	for i := 0; i < nHotels; i++ {
		hotels.MustAppend(progxe.Tuple{
			ID:      int64(i),
			Vals:    []float64{85 + rng.Float64()*250}, // all hotels exceed €80
			JoinKey: int64(rng.IntN(nCities)),
		})
	}
	return flights, hotels
}
