// Supply-chain management (Example 3 / query Q1 of the paper): couple
// suppliers that can produce 100K units of part P1 with transporters that
// deliver from the same country, minimizing total cost and delay:
//
//	SELECT R.id, T.id, (R.uPrice + T.uShipCost) AS tCost,
//	       (2 * R.manTime + T.shipTime) AS delay
//	FROM Suppliers R, Transporters T
//	WHERE R.country = T.country AND R.manCap >= 100000
//	PREFERRING LOWEST(tCost) AND LOWEST(delay)
//
// The planner sees each Pareto-optimal (supplier, transporter) pairing the
// moment it is provably final, instead of waiting for the full evaluation.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"progxe"
)

const (
	nSuppliers    = 5000
	nTransporters = 5000
	nCountries    = 40
)

func main() {
	suppliers, transporters := buildData()

	q, err := progxe.ParseQuery(`
		SELECT R.id, T.id,
		       (R.uPrice + T.uShipCost) AS tCost,
		       (2 * R.manTime + T.shipTime) AS delay
		FROM Suppliers R, Transporters T
		WHERE R.country = T.country AND R.manCap >= 100000
		PREFERRING LOWEST(tCost) AND LOWEST(delay)`)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := q.Compile(suppliers, transporters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suppliers meeting capacity: %d of %d; transporters: %d\n",
		problem.Left.Len(), nSuppliers, problem.Right.Len())

	engine := progxe.New(progxe.Options{PushThrough: true}) // ProgXe+
	start := time.Now()
	count := 0
	_, err = engine.Run(problem, progxe.SinkFunc(func(r progxe.Result) {
		count++
		if count <= 8 {
			fmt.Printf("[%7.2f ms] plan: supplier %-5d + transporter %-5d → total cost %6.2f, delay %6.2f\n",
				float64(time.Since(start).Microseconds())/1000,
				r.LeftID, r.RightID, r.Out[0], r.Out[1])
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d Pareto-optimal production plans in %v\n",
		count, time.Since(start).Round(time.Millisecond))
}

// buildData synthesizes the two sources. Suppliers carry unit price,
// manufacturing time and capacity; transporters carry unit shipping cost
// and shipping time. The join key encodes the country.
func buildData() (*progxe.Relation, *progxe.Relation) {
	rng := rand.New(rand.NewPCG(7, 11))

	sSchema, err := progxe.NewSchema("Suppliers", []string{"uPrice", "manTime", "manCap"}, "country")
	if err != nil {
		log.Fatal(err)
	}
	suppliers := progxe.NewRelation(sSchema)
	for i := 0; i < nSuppliers; i++ {
		suppliers.MustAppend(progxe.Tuple{
			ID: int64(i),
			Vals: []float64{
				5 + rng.Float64()*95,              // unit price
				1 + rng.Float64()*29,              // manufacturing time
				float64(20000 + rng.IntN(400000)), // capacity
			},
			JoinKey: int64(rng.IntN(nCountries)),
		})
	}

	tSchema, err := progxe.NewSchema("Transporters", []string{"uShipCost", "shipTime"}, "country")
	if err != nil {
		log.Fatal(err)
	}
	transporters := progxe.NewRelation(tSchema)
	for i := 0; i < nTransporters; i++ {
		transporters.MustAppend(progxe.Tuple{
			ID: int64(i),
			Vals: []float64{
				1 + rng.Float64()*40, // unit shipping cost
				1 + rng.Float64()*20, // shipping time
			},
			JoinKey: int64(rng.IntN(nCountries)),
		})
	}
	return suppliers, transporters
}
