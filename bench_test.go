// Benchmarks regenerating the paper's evaluation (one per figure, Figs.
// 10–13) plus ablations over the framework's design choices. Workloads are
// miniaturized so `go test -bench=.` completes quickly; use cmd/progxe-bench
// (optionally with PROGXE_BENCH_SCALE) for full-size series.
//
// Progress-figure benchmarks additionally report first-ms — the latency of
// the first progressively emitted result — which is the quantity the paper's
// progressiveness plots are about.
package progxe_test

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"progxe"
	"progxe/internal/bench"
	"progxe/internal/core"
	"progxe/internal/datagen"
	"progxe/internal/join"
	"progxe/internal/mapping"
	"progxe/internal/relation"
	"progxe/internal/server"
	"progxe/internal/sig"
	"progxe/internal/skyline"
	"progxe/internal/smj"
)

// benchProgress benchmarks every engine of a progress figure on a
// miniaturized workload (one full engine run per iteration).
func benchProgress(b *testing.B, figID string, n int) {
	f, err := bench.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	wl := f.Workload
	wl.N = n
	p, err := wl.Problem()
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range f.Engines {
		b.Run(spec.Name, func(b *testing.B) {
			var firstSum, firstMin time.Duration
			for i := 0; i < b.N; i++ {
				e := spec.New()
				start := time.Now()
				var first time.Duration
				got := false
				_, err := e.Run(p, smj.SinkFunc(func(smj.Result) {
					if !got {
						got = true
						first = time.Since(start)
					}
				}))
				if err != nil {
					b.Fatal(err)
				}
				firstSum += first
				if i == 0 || first < firstMin {
					firstMin = first
				}
			}
			reportFirstMS(b, firstSum, firstMin)
		})
	}
}

// reportFirstMS reports first-result latency across all b.N iterations —
// the mean and the min — rather than whatever the last iteration happened
// to measure.
func reportFirstMS(b *testing.B, sum, min time.Duration) {
	b.Helper()
	mean := sum / time.Duration(b.N)
	b.ReportMetric(float64(mean.Microseconds())/1000, "first-ms")
	b.ReportMetric(float64(min.Microseconds())/1000, "first-min-ms")
}

// benchTotalTime benchmarks every engine × σ cell of a total-time figure.
func benchTotalTime(b *testing.B, figID string, n int) {
	f, err := bench.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	for _, sigma := range f.Sweep {
		wl := f.Workload
		wl.N = n
		wl.Sigma = sigma
		p, err := wl.Problem()
		if err != nil {
			b.Fatal(err)
		}
		for _, spec := range f.Engines {
			b.Run(fmt.Sprintf("%s/sigma=%g", spec.Name, sigma), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := spec.New().Run(p, discard{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

type discard struct{}

func (discard) Emit(smj.Result) {}

// Figure 10 a–c: progressiveness of the four ProgXe variants (σ=0.001).
func BenchmarkFig10a(b *testing.B) { benchProgress(b, "10a", 1200) }
func BenchmarkFig10b(b *testing.B) { benchProgress(b, "10b", 1200) }
func BenchmarkFig10c(b *testing.B) { benchProgress(b, "10c", 1200) }

// Figure 10 d–f: total execution time of the variants vs join selectivity.
func BenchmarkFig10d(b *testing.B) { benchTotalTime(b, "10d", 500) }
func BenchmarkFig10e(b *testing.B) { benchTotalTime(b, "10e", 500) }
func BenchmarkFig10f(b *testing.B) { benchTotalTime(b, "10f", 500) }

// Figure 11 a–c: ProgXe vs SSMJ progressiveness at σ=0.01.
func BenchmarkFig11a(b *testing.B) { benchProgress(b, "11a", 1000) }
func BenchmarkFig11b(b *testing.B) { benchProgress(b, "11b", 1000) }
func BenchmarkFig11c(b *testing.B) { benchProgress(b, "11c", 1000) }

// Figure 11 d–f: the same at σ=0.1.
func BenchmarkFig11d(b *testing.B) { benchProgress(b, "11d", 600) }
func BenchmarkFig11e(b *testing.B) { benchProgress(b, "11e", 600) }
func BenchmarkFig11f(b *testing.B) { benchProgress(b, "11f", 600) }

// Figure 12 a–b: d=5 at σ=0.1; anti-correlated is where SSMJ collapses.
func BenchmarkFig12a(b *testing.B) { benchProgress(b, "12a", 500) }
func BenchmarkFig12b(b *testing.B) { benchProgress(b, "12b", 500) }

// BenchmarkParallelWorkers sweeps the parallel region-processing fan-out on
// the Fig. 11f workload (the one with the largest tuple-level share). Every
// sub-benchmark reports the workers and gomaxprocs it ran with, so recorded
// series are comparable across machines; the emission stream is identical
// at every worker count by construction.
func BenchmarkParallelWorkers(b *testing.B) {
	f, err := bench.FigureByID("11f")
	if err != nil {
		b.Fatal(err)
	}
	wl := f.Workload
	wl.N = 600
	p, err := wl.Problem()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := progxe.New(progxe.Options{Workers: workers})
				if _, err := e.Run(p, discard{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkParallelCommitters sweeps the partitioned-commit fan-out behind
// a fixed worker pool on the Fig. 11f workload. Sub-benchmarks report the
// committer count alongside workers and gomaxprocs; committers=0 is the
// PR-3 path (commit on the sequencer), and the emission stream is identical
// at every count by construction.
func BenchmarkParallelCommitters(b *testing.B) {
	f, err := bench.FigureByID("11f")
	if err != nil {
		b.Fatal(err)
	}
	wl := f.Workload
	wl.N = 600
	p, err := wl.Problem()
	if err != nil {
		b.Fatal(err)
	}
	for _, committers := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("committers=%d", committers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := progxe.New(progxe.Options{Workers: 4, Committers: committers})
				if _, err := e.Run(p, discard{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(committers), "committers")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkParallelSpeculate sweeps the cross-round speculation depth behind
// a fixed w=4 c=4 pipeline on the Fig. 11f workload. speculate=0 is the PR-7
// path (every round drains the committer logs before its phase-1 precheck);
// positive depths overlap upcoming rounds' stale scans with those drains.
// The emission stream is identical at every depth by construction.
func BenchmarkParallelSpeculate(b *testing.B) {
	f, err := bench.FigureByID("11f")
	if err != nil {
		b.Fatal(err)
	}
	wl := f.Workload
	wl.N = 600
	p, err := wl.Problem()
	if err != nil {
		b.Fatal(err)
	}
	for _, speculate := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("speculate=%d", speculate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := progxe.New(progxe.Options{Workers: 4, Committers: 4, SpeculateRounds: speculate})
				if _, err := e.Run(p, discard{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(speculate), "speculate")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// Figure 13 a–c: total execution time vs SSMJ across σ.
func BenchmarkFig13a(b *testing.B) { benchTotalTime(b, "13a", 500) }
func BenchmarkFig13b(b *testing.B) { benchTotalTime(b, "13b", 500) }
func BenchmarkFig13c(b *testing.B) { benchTotalTime(b, "13c", 500) }

// ----- Ablations (design choices called out in DESIGN.md §6) -----

func ablationProblem(b *testing.B, n, d int) *smj.Problem {
	b.Helper()
	wl := bench.Workload{N: n, Dims: d, Dist: datagen.AntiCorrelated, Sigma: 0.01, Seed: 21}
	p, err := wl.Problem()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblationGridK varies the output-grid resolution k (the paper's
// partition size δ): too coarse loses pruning, too fine pays bookkeeping.
func BenchmarkAblationGridK(b *testing.B) {
	p := ablationProblem(b, 1200, 4)
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := progxe.New(progxe.Options{OutputCells: k})
				if _, err := e.Run(p, discard{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInputG varies the input partitioning resolution g, which
// controls the region count n the O(n²) look-ahead machinery operates on.
func BenchmarkAblationInputG(b *testing.B) {
	p := ablationProblem(b, 1200, 4)
	for _, g := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := progxe.New(progxe.Options{InputCells: g})
				if _, err := e.Run(p, discard{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartitioning compares the uniform-grid input partitioner
// against the kd median-split alternative (§III notes other space
// partitionings apply) — kd keeps partitions balanced under skew.
func BenchmarkAblationPartitioning(b *testing.B) {
	for _, dist := range []datagen.Distribution{datagen.Correlated, datagen.AntiCorrelated} {
		wl := bench.Workload{N: 1200, Dims: 4, Dist: dist, Sigma: 0.01, Seed: 21}
		p, err := wl.Problem()
		if err != nil {
			b.Fatal(err)
		}
		for _, part := range []core.Partitioning{core.PartitionGrid, core.PartitionKD} {
			b.Run(fmt.Sprintf("%s/%s", dist, part), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := progxe.New(progxe.Options{Partitioning: part})
					if _, err := e.Run(p, discard{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationOrdering isolates the ordering policy: the full
// benefit/cost ProgOrder vs cardinality-only ranking vs arrival vs random.
func BenchmarkAblationOrdering(b *testing.B) {
	p := ablationProblem(b, 1200, 4)
	policies := []struct {
		name string
		ord  progxe.Ordering
	}{
		{"ProgOrder", progxe.OrderProgressive},
		{"CardinalityOnly", progxe.OrderCardinality},
		{"Arrival", progxe.OrderArrival},
		{"Random", progxe.OrderRandom},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var firstSum, firstMin time.Duration
			for i := 0; i < b.N; i++ {
				e := progxe.New(progxe.Options{Ordering: pol.ord, Seed: 5})
				start := time.Now()
				var first time.Duration
				got := false
				if _, err := e.Run(p, smj.SinkFunc(func(smj.Result) {
					if !got {
						got = true
						first = time.Since(start)
					}
				})); err != nil {
					b.Fatal(err)
				}
				firstSum += first
				if i == 0 || first < firstMin {
					firstMin = first
				}
			}
			reportFirstMS(b, firstSum, firstMin)
		})
	}
}

// BenchmarkAblationSkyline compares the single-set skyline substrates used
// by the blocking baselines.
func BenchmarkAblationSkyline(b *testing.B) {
	rel := datagen.MustGenerate(datagen.Spec{N: 4000, Dims: 4, Distribution: datagen.AntiCorrelated, Selectivity: 1, Seed: 8})
	pts := make([][]float64, rel.Len())
	for i, t := range rel.Tuples {
		pts[i] = t.Vals
	}
	for _, alg := range []skyline.Algorithm{skyline.BNL, skyline.SFS, skyline.DC} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				skyline.Compute(alg, pts)
			}
		})
	}
}

// BenchmarkAblationSignature compares the exact signature against the Bloom
// filter on the partition-pair join test of §III-A.
func BenchmarkAblationSignature(b *testing.B) {
	keysA := make([]int64, 2000)
	keysB := make([]int64, 2000)
	for i := range keysA {
		keysA[i] = int64(i % 997)
		keysB[i] = int64((i % 997) + 900) // partial overlap
	}
	b.Run("Exact", func(b *testing.B) {
		ea, eb := sig.NewExact(), sig.NewExact()
		for _, k := range keysA {
			ea.Add(k)
		}
		for _, k := range keysB {
			eb.Add(k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ea.MayJoin(eb)
		}
	})
	b.Run("Bloom", func(b *testing.B) {
		ba, bb := sig.NewBloom(4096, 4), sig.NewBloom(4096, 4)
		for _, k := range keysA {
			ba.Add(k)
		}
		for _, k := range keysB {
			bb.Add(k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ba.MayIntersect(bb)
		}
	})
}

// BenchmarkJoinSubstrate compares the two equi-join implementations.
func BenchmarkJoinSubstrate(b *testing.B) {
	r, t, err := datagen.GeneratePair(datagen.Spec{N: 5000, Dims: 2, Selectivity: 0.001, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.Hash(r.Tuples, t.Tuples, func(int, int) bool { return true })
		}
	})
	b.Run("Merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.Merge(r.Tuples, t.Tuples, func(int, int) bool { return true })
		}
	})
}

// BenchmarkServeTTFR measures time-to-first-result through the HTTP serve
// layer — the quantity the serve-path plan cache exists to improve. The
// cache-miss variant disables the plan cache so every request re-pays
// partition/region-build/prune at query time; the cache-hit variant warms
// the cache once and measures the replanning-free path. Reported first-ms
// here is client-observed: request write → first "result" NDJSON line.
func BenchmarkServeTTFR(b *testing.B) {
	left, right, err := datagen.GeneratePair(datagen.Spec{
		N: 2000, Dims: 3, Distribution: datagen.AntiCorrelated,
		Selectivity: 0.01, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	const query = `SELECT (R.a0+T.a0) AS x, (R.a1+T.a1) AS y FROM R R, T T ` +
		`WHERE R.jkey = T.jkey PREFERRING LOWEST(x) AND LOWEST(y)`
	for _, mode := range []struct {
		name      string
		cacheSize int
	}{
		{"cache-miss", -1}, // plan cache disabled: full setup every request
		{"cache-hit", 0},   // default cache: warmed before the timer starts
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv := server.New(server.Config{PlanCacheSize: mode.cacheSize})
			for _, rel := range []*relation.Relation{left, right} {
				if err := srv.Catalog().Register(rel); err != nil {
					b.Fatal(err)
				}
			}
			ts := httptest.NewServer(srv)
			defer ts.Close()
			body := fmt.Sprintf(`{"query": %q}`, query)
			fire := func() time.Duration {
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("query status %d", resp.StatusCode)
				}
				var first time.Duration
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
				for sc.Scan() {
					if first == 0 && strings.Contains(sc.Text(), `"type":"result"`) {
						first = time.Since(start)
					}
				}
				if err := sc.Err(); err != nil {
					b.Fatal(err)
				}
				if first == 0 {
					b.Fatal("stream held no result records")
				}
				return first
			}
			fire() // warm: connection pool, and the plan cache when enabled
			b.ResetTimer()
			var firstSum, firstMin time.Duration
			for i := 0; i < b.N; i++ {
				first := fire()
				firstSum += first
				if i == 0 || first < firstMin {
					firstMin = first
				}
			}
			reportFirstMS(b, firstSum, firstMin)
		})
	}
}

// BenchmarkMapping measures mapping-function evaluation and interval
// propagation (the per-tuple and per-region costs of the Map operator).
func BenchmarkMapping(b *testing.B) {
	maps := mapping.MustSet(
		mapping.Func{Name: "x", Expr: mapping.Sum(mapping.A(mapping.Left, 0, ""), mapping.A(mapping.Right, 0, ""))},
		mapping.Func{Name: "y", Expr: mapping.Sum(mapping.Scale{Factor: 2, Of: mapping.A(mapping.Left, 1, "")}, mapping.A(mapping.Right, 1, ""))},
	)
	l := []float64{3, 4}
	r := []float64{5, 6}
	dst := make([]float64, 2)
	b.Run("Map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			maps.Map(l, r, dst)
		}
	})
}
