package progxe_test

import (
	"testing"

	"progxe"
)

func workload(t *testing.T) *progxe.Problem {
	t.Helper()
	left, right, err := progxe.GeneratePair(progxe.DataSpec{
		N: 300, Dims: 3, Distribution: progxe.AntiCorrelated, Selectivity: 0.05, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := progxe.ParseQuery(`
		SELECT (R.a0 + T.a0) AS x, (R.a1 + T.a1) AS y, (R.a2 + T.a2) AS z
		FROM R R, T T
		WHERE R.jkey = T.jkey
		PREFERRING LOWEST(x) AND LOWEST(y) AND LOWEST(z)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Compile(left, right)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeEnd2End(t *testing.T) {
	p := workload(t)
	oracle, err := progxe.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	engines := []progxe.Engine{
		progxe.New(progxe.Options{}),
		progxe.New(progxe.Options{PushThrough: true}),
		progxe.NewJFSL(true),
		progxe.NewSSMJ(true),
		progxe.NewSAJ(),
	}
	for _, e := range engines {
		var sink progxe.Collector
		if _, err := e.Run(p, &sink); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(sink.Results) != len(oracle) {
			t.Fatalf("%s: %d results, oracle %d", e.Name(), len(sink.Results), len(oracle))
		}
	}
}

func TestStream(t *testing.T) {
	p := workload(t)
	results, wait := progxe.Stream(progxe.New(progxe.Options{}), p)
	n := 0
	for range results {
		n++
	}
	stats, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || stats.ResultCount != n {
		t.Fatalf("streamed %d results, stats %d", n, stats.ResultCount)
	}
	oracle, err := progxe.Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(oracle) {
		t.Fatalf("stream delivered %d, oracle %d", n, len(oracle))
	}
}

func TestFacadeSchemaBuilders(t *testing.T) {
	s, err := progxe.NewSchema("X", []string{"a"}, "k")
	if err != nil {
		t.Fatal(err)
	}
	r := progxe.NewRelation(s)
	if r.Schema.Name != "X" {
		t.Fatal("relation builder wrong")
	}
	if progxe.AllLowest(2).Dims() != 2 {
		t.Fatal("preference builder wrong")
	}
	if _, err := progxe.Generate(progxe.DataSpec{N: 1, Dims: 1, Selectivity: 1}); err != nil {
		t.Fatal(err)
	}
}
